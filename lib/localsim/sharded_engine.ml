module Port_graph = Shades_graph.Port_graph
module Event = Shades_trace.Event
module Crew = Shades_pool.Crew

let default_domains () = Shades_pool.default_domains ()

(* One growable event buffer per shard, drained by the coordinator.
   Events are consed (reverse order) and flushed with a reversing
   iteration, so a flush replays them in emission order. *)
let flush_buffer emit buf =
  List.iter emit (List.rev !buf);
  buf := []

(* Shared implementation; [crash_at] is the normalized per-vertex crash
   round ([max_int] = never, {!Engine.crash_schedule}).  It is written
   before the crew exists and only read afterwards — worker domains see
   a frozen schedule. *)
let run_internal ?max_rounds ?domains ?on_round ?tracer
    ?(msg_size = fun _ -> 0) ~crash_at g ~advice
    (alg : (_, _, _) Engine.algorithm) =
  let n = Port_graph.order g in
  let csr = Port_graph.Csr.of_graph g in
  let max_rounds =
    match max_rounds with Some m -> m | None -> (4 * n) + 16
  in
  let has_faults = Array.exists (fun r -> r < max_int) crash_at in
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let shards = min domains n in
  (* Contiguous balanced ranges: shard [s] owns [start.(s) ..
     start.(s+1) - 1].  Contiguity is what makes shard-major event
     flushing reproduce the sequential engine's vertex-ascending event
     order exactly. *)
  let start = Array.init (shards + 1) (fun s -> s * n / shards) in
  let owner = Array.make n 0 in
  for s = 0 to shards - 1 do
    for v = start.(s) to start.(s + 1) - 1 do
      owner.(v) <- s
    done
  done;
  let emit = match tracer with Some f -> f | None -> fun _ -> () in
  let advice_bits = Shades_bits.Bitstring.length advice in
  (* Init runs in the coordinator domain, exactly as the sequential
     engine: [init] (and the round-0 [output] probes) may close over
     state that is not domain-safe, e.g. Full_info's common-round-count
     assertion. *)
  let states =
    Array.init n (fun v -> alg.init ~degree:(Port_graph.Csr.degree csr v) ~advice)
  in
  let outputs = Array.map alg.output states in
  (* A node crashed at round 0 never acted: its init-time decision, if
     any, is void — same rule as the sequential engine. *)
  if has_faults then
    for v = 0 to n - 1 do
      if crash_at.(v) = 0 then outputs.(v) <- None
    done;
  (match tracer with
  | None -> ()
  | Some _ ->
      for v = 0 to n - 1 do
        emit (Event.Advice_read { v; bits = advice_bits })
      done;
      for v = 0 to n - 1 do
        if crash_at.(v) = 0 then emit (Event.Crash { v; round = 0 })
      done;
      for v = 0 to n - 1 do
        if Option.is_some outputs.(v) then begin
          emit (Event.Decide { v; round = 0 });
          emit (Event.Halt { v; round = 0 })
        end
      done);
  (* Live undecided nodes only: crashed nodes never decide and must not
     keep the round loop running. *)
  let undecided = ref 0 in
  for v = 0 to n - 1 do
    if Option.is_none outputs.(v) && crash_at.(v) > 0 then incr undecided
  done;
  let rounds = ref 0 in
  let messages = ref 0 in
  if !undecided > 0 && max_rounds > 0 then begin
    (* Per-round scratch, all shard-disjoint:
       - [outbox.(src).(dst)]: messages shard [src] produced for
         vertices of shard [dst], written only by [src] in the send
         phase, drained only by [dst] in the deliver phase (the barrier
         between the phases orders the two);
       - [inboxes.(v)]: written only by [owner.(v)];
       - [events.(s)], [sent.(s)], [decided.(s)]: per-shard telemetry,
         read by the coordinator between barriers. *)
    let outbox = Array.init shards (fun _ -> Array.init shards (fun _ -> ref [])) in
    let inboxes = Array.make n [] in
    let events = Array.init shards (fun _ -> ref []) in
    let sent = Array.make shards 0 in
    let decided = Array.make shards 0 in
    let tracing = Option.is_some tracer in
    let send_phase ~round s () =
      let buf = events.(s) in
      let count = ref 0 in
      for v = start.(s) to start.(s + 1) - 1 do
        if Option.is_none outputs.(v) && crash_at.(v) > round then
          for p = 0 to Port_graph.Csr.degree csr v - 1 do
            match alg.send states.(v) ~port:p with
            | None -> ()
            | Some m ->
                incr count;
                if tracing then
                  buf :=
                    Event.Send { round; v; port = p; size = msg_size m }
                    :: !buf;
                let u = Port_graph.Csr.neighbor_vertex csr v p in
                let q = Port_graph.Csr.neighbor_port csr v p in
                let cell = outbox.(s).(owner.(u)) in
                cell := (u, q, m) :: !cell
          done
      done;
      sent.(s) <- !count
    in
    let deliver_phase ~round s () =
      let buf = events.(s) in
      let count = ref 0 in
      for src = 0 to shards - 1 do
        let cell = outbox.(src).(s) in
        List.iter (fun (u, q, m) -> inboxes.(u) <- (q, m) :: inboxes.(u)) !cell;
        cell := []
      done;
      for v = start.(s) to start.(s + 1) - 1 do
        if Option.is_none outputs.(v) && crash_at.(v) > round then begin
          let inbox =
            List.sort (fun (p, _) (q, _) -> Int.compare p q) inboxes.(v)
          in
          if tracing then
            List.iter
              (fun (p, m) ->
                buf :=
                  Event.Deliver { round; v; port = p; size = msg_size m }
                  :: !buf)
              inbox;
          states.(v) <- alg.step states.(v) inbox;
          outputs.(v) <- alg.output states.(v);
          if Option.is_some outputs.(v) then begin
            incr count;
            if tracing then begin
              buf := Event.Decide { v; round } :: !buf;
              buf := Event.Halt { v; round } :: !buf
            end
          end
        end;
        (* messages addressed to a decided (halted) or crashed node are
           discarded *)
        inboxes.(v) <- []
      done;
      decided.(s) <- !count
    in
    let crew = Crew.create ~domains:shards () in
    Fun.protect
      ~finally:(fun () -> Crew.shutdown crew)
      (fun () ->
        while !undecided > 0 && !rounds < max_rounds do
          incr rounds;
          let round = !rounds in
          emit (Event.Round_start { round });
          (* Crashes taking effect this round, applied by the
             coordinator before the send barrier: same event position
             and vertex order as the sequential engine. *)
          if has_faults then
            for v = 0 to n - 1 do
              if crash_at.(v) = round && Option.is_none outputs.(v) then begin
                emit (Event.Crash { v; round });
                decr undecided
              end
            done;
          Crew.run_all crew
            (Array.init shards (fun s -> send_phase ~round s));
          for s = 0 to shards - 1 do
            messages := !messages + sent.(s);
            if tracing then flush_buffer emit events.(s)
          done;
          Crew.run_all crew
            (Array.init shards (fun s -> deliver_phase ~round s));
          for s = 0 to shards - 1 do
            undecided := !undecided - decided.(s);
            if tracing then flush_buffer emit events.(s)
          done;
          match on_round with
          | Some f -> f ~round ~messages:!messages
          | None -> ()
        done)
  end;
  if !undecided > 0 then raise (Engine.Did_not_terminate !rounds);
  (outputs, !rounds, !messages)

let run ?max_rounds ?domains ?on_round ?tracer ?msg_size g ~advice alg =
  let crash_at = Array.make (Port_graph.order g) max_int in
  let outputs, rounds, messages =
    run_internal ?max_rounds ?domains ?on_round ?tracer ?msg_size ~crash_at g
      ~advice alg
  in
  ({ Engine.outputs = Array.map Option.get outputs; rounds; messages }
    : _ Engine.result)

let run_with_faults ?max_rounds ?domains ?on_round ?tracer ?msg_size g ~advice
    ~faults alg =
  let crash_at = Engine.crash_schedule ~n:(Port_graph.order g) faults in
  let outputs, rounds, messages =
    run_internal ?max_rounds ?domains ?on_round ?tracer ?msg_size ~crash_at g
      ~advice alg
  in
  ({ Engine.outputs; rounds; messages } : _ Engine.faulty)
