module Port_graph = Shades_graph.Port_graph
module Event = Shades_trace.Event

type ('state, 'msg, 'output) algorithm = {
  init : degree:int -> advice:Shades_bits.Bitstring.t -> 'state;
  send : 'state -> port:int -> 'msg option;
  step : 'state -> (int * 'msg) list -> 'state;
  output : 'state -> 'output option;
}

type 'output result = { outputs : 'output array; rounds : int; messages : int }

type crash = { victim : int; at_round : int }

type 'output faulty = {
  outputs : 'output option array;
  rounds : int;
  messages : int;
}

exception Did_not_terminate of int

(* The per-vertex crash round: [max_int] = never.  Duplicate victims
   collapse to the earliest crash; negative rounds clamp to 0 ("crashed
   from initialization"). *)
let crash_schedule ~n faults =
  let crash_at = Array.make n max_int in
  List.iter
    (fun { victim; at_round } ->
      if victim < 0 || victim >= n then
        invalid_arg "Engine: crash victim out of range";
      let r = max 0 at_round in
      if r < crash_at.(victim) then crash_at.(victim) <- r)
    faults;
  crash_at

(* Shared implementation: the fault-free [run] is the [crash_at] = all
   [max_int] instance, whose per-vertex liveness checks are single array
   reads — the hot loops stay allocation-free. *)
let run_internal ?max_rounds ?on_round ?tracer ?(msg_size = fun _ -> 0)
    ~crash_at g ~advice alg =
  let n = Port_graph.order g in
  (* flat int-array adjacency: the per-round loops below touch no
     per-vertex tuple rows *)
  let csr = Port_graph.Csr.of_graph g in
  let max_rounds =
    match max_rounds with Some m -> m | None -> (4 * n) + 16
  in
  let has_faults = Array.exists (fun r -> r < max_int) crash_at in
  let emit = match tracer with Some f -> f | None -> fun _ -> () in
  let advice_bits = Shades_bits.Bitstring.length advice in
  let states =
    Array.init n (fun v -> alg.init ~degree:(Port_graph.Csr.degree csr v) ~advice)
  in
  let outputs = Array.map alg.output states in
  (* A node crashed at round 0 never acted: its init-time decision, if
     any, is void. *)
  if has_faults then
    for v = 0 to n - 1 do
      if crash_at.(v) = 0 then outputs.(v) <- None
    done;
  (match tracer with
  | None -> ()
  | Some _ ->
      for v = 0 to n - 1 do
        emit (Event.Advice_read { v; bits = advice_bits })
      done;
      for v = 0 to n - 1 do
        if crash_at.(v) = 0 then emit (Event.Crash { v; round = 0 })
      done;
      for v = 0 to n - 1 do
        if Option.is_some outputs.(v) then begin
          emit (Event.Decide { v; round = 0 });
          emit (Event.Halt { v; round = 0 })
        end
      done);
  (* Live undecided nodes: what the round loop must still resolve.
     Crashed nodes are out of the count — they will never decide, and
     must not keep the loop running. *)
  let undecided = ref 0 in
  for v = 0 to n - 1 do
    if Option.is_none outputs.(v) && crash_at.(v) > 0 then incr undecided
  done;
  let rounds = ref 0 in
  let messages = ref 0 in
  while !undecided > 0 && !rounds < max_rounds do
    incr rounds;
    let round = !rounds in
    emit (Event.Round_start { round });
    (* Crashes taking effect this round: the victim halts before
       sending — peers see silence from here on. *)
    if has_faults then
      for v = 0 to n - 1 do
        if crash_at.(v) = round && Option.is_none outputs.(v) then begin
          emit (Event.Crash { v; round });
          decr undecided
        end
      done;
    (* Collect this round's messages from every node, then deliver: the
       two phases are separated so that delivery is truly synchronous.
       Decided nodes have halted and crashed nodes are dead — neither
       sends, and anything addressed to them is discarded. *)
    let inboxes = Array.make n [] in
    for v = 0 to n - 1 do
      if Option.is_none outputs.(v) && crash_at.(v) > round then
        for p = 0 to Port_graph.Csr.degree csr v - 1 do
          match alg.send states.(v) ~port:p with
          | None -> ()
          | Some m ->
              incr messages;
              emit
                (Event.Send
                   { round; v; port = p; size = msg_size m });
              let u = Port_graph.Csr.neighbor_vertex csr v p in
              let q = Port_graph.Csr.neighbor_port csr v p in
              inboxes.(u) <- (q, m) :: inboxes.(u)
        done
    done;
    for v = 0 to n - 1 do
      if Option.is_none outputs.(v) && crash_at.(v) > round then begin
        let inbox =
          List.sort (fun (p, _) (q, _) -> Int.compare p q) inboxes.(v)
        in
        (match tracer with
        | None -> ()
        | Some _ ->
            List.iter
              (fun (p, m) ->
                emit
                  (Event.Deliver
                     { round; v; port = p; size = msg_size m }))
              inbox);
        states.(v) <- alg.step states.(v) inbox;
        outputs.(v) <- alg.output states.(v);
        if Option.is_some outputs.(v) then begin
          decr undecided;
          emit (Event.Decide { v; round });
          emit (Event.Halt { v; round })
        end
      end
    done;
    match on_round with
    | Some f -> f ~round ~messages:!messages
    | None -> ()
  done;
  if !undecided > 0 then raise (Did_not_terminate !rounds);
  (outputs, !rounds, !messages)

let run ?max_rounds ?on_round ?tracer ?msg_size g ~advice alg =
  let crash_at = Array.make (Port_graph.order g) max_int in
  let outputs, rounds, messages =
    run_internal ?max_rounds ?on_round ?tracer ?msg_size ~crash_at g ~advice
      alg
  in
  (* no faults: termination implies every node decided *)
  ({ outputs = Array.map Option.get outputs; rounds; messages } : _ result)

let run_with_faults ?max_rounds ?on_round ?tracer ?msg_size g ~advice ~faults
    alg =
  let crash_at = crash_schedule ~n:(Port_graph.order g) faults in
  let outputs, rounds, messages =
    run_internal ?max_rounds ?on_round ?tracer ?msg_size ~crash_at g ~advice
      alg
  in
  ({ outputs; rounds; messages } : _ faulty)
