module Port_graph = Shades_graph.Port_graph
module Event = Shades_trace.Event

type ('state, 'msg, 'output) algorithm = {
  init : degree:int -> advice:Shades_bits.Bitstring.t -> 'state;
  send : 'state -> port:int -> 'msg option;
  step : 'state -> (int * 'msg) list -> 'state;
  output : 'state -> 'output option;
}

type 'output result = { outputs : 'output array; rounds : int; messages : int }

exception Did_not_terminate of int

let run ?max_rounds ?on_round ?tracer ?(msg_size = fun _ -> 0) g ~advice alg =
  let n = Port_graph.order g in
  (* flat int-array adjacency: the per-round loops below touch no
     per-vertex tuple rows *)
  let csr = Port_graph.Csr.of_graph g in
  let max_rounds =
    match max_rounds with Some m -> m | None -> (4 * n) + 16
  in
  let emit = match tracer with Some f -> f | None -> fun _ -> () in
  let advice_bits = Shades_bits.Bitstring.length advice in
  let states =
    Array.init n (fun v -> alg.init ~degree:(Port_graph.Csr.degree csr v) ~advice)
  in
  let outputs = Array.map alg.output states in
  (match tracer with
  | None -> ()
  | Some _ ->
      for v = 0 to n - 1 do
        emit (Event.Advice_read { v; bits = advice_bits })
      done;
      for v = 0 to n - 1 do
        if Option.is_some outputs.(v) then begin
          emit (Event.Decide { v; round = 0 });
          emit (Event.Halt { v; round = 0 })
        end
      done);
  let all_decided () = Array.for_all Option.is_some outputs in
  let rounds = ref 0 in
  let messages = ref 0 in
  while (not (all_decided ())) && !rounds < max_rounds do
    incr rounds;
    emit (Event.Round_start { round = !rounds });
    (* Collect this round's messages from every node, then deliver: the
       two phases are separated so that delivery is truly synchronous.
       Decided nodes have halted — they send nothing, and anything
       addressed to them is discarded. *)
    let inboxes = Array.make n [] in
    for v = 0 to n - 1 do
      if Option.is_none outputs.(v) then
        for p = 0 to Port_graph.Csr.degree csr v - 1 do
          match alg.send states.(v) ~port:p with
          | None -> ()
          | Some m ->
              incr messages;
              emit
                (Event.Send
                   { round = !rounds; v; port = p; size = msg_size m });
              let u = Port_graph.Csr.neighbor_vertex csr v p in
              let q = Port_graph.Csr.neighbor_port csr v p in
              inboxes.(u) <- (q, m) :: inboxes.(u)
        done
    done;
    for v = 0 to n - 1 do
      if Option.is_none outputs.(v) then begin
        let inbox =
          List.sort (fun (p, _) (q, _) -> Int.compare p q) inboxes.(v)
        in
        (match tracer with
        | None -> ()
        | Some _ ->
            List.iter
              (fun (p, m) ->
                emit
                  (Event.Deliver
                     { round = !rounds; v; port = p; size = msg_size m }))
              inbox);
        states.(v) <- alg.step states.(v) inbox;
        outputs.(v) <- alg.output states.(v);
        if Option.is_some outputs.(v) then begin
          emit (Event.Decide { v; round = !rounds });
          emit (Event.Halt { v; round = !rounds })
        end
      end
    done;
    match on_round with
    | Some f -> f ~round:!rounds ~messages:!messages
    | None -> ()
  done;
  if not (all_decided ()) then raise (Did_not_terminate !rounds);
  {
    outputs = Array.map Option.get outputs;
    rounds = !rounds;
    messages = !messages;
  }
