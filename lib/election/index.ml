module Port_graph = Shades_graph.Port_graph
module Paths = Shades_graph.Paths
module Refinement = Shades_views.Refinement

(* shadescheck: allow-file locality -- election-index computation is
   offline by definition: psi_* search over all candidate outputs needs
   the whole graph in hand; nothing here runs inside a node algorithm *)

type vertex = Port_graph.vertex

(* Try to assign a common output to every non-leader class.  [assign]
   receives the members of one class and must produce one payload valid
   for all of them, or [None]. *)
let try_leader g refinement ~depth ~leader ~assign =
  let n = Port_graph.order g in
  let groups = Refinement.classes refinement ~depth in
  let answers = Array.make n Task.Leader in
  let rec go = function
    | [] -> Some answers
    | members :: rest ->
        if members = [ leader ] then go rest
        else begin
          match assign members with
          | None -> None
          | Some payload ->
              List.iter
                (fun v -> answers.(v) <- Task.Follower payload)
                members;
              go rest
        end
  in
  go (Array.to_list groups)

(* Candidate leaders at [depth]: nodes whose B^depth is unique
   (Proposition 2.1), scanned in vertex order for determinism. *)
let with_candidates g ~depth f =
  let refinement = Refinement.compute g ~depth in
  let rec first = function
    | [] -> None
    | leader :: rest -> (
        match f refinement leader with
        | Some answers -> Some answers
        | None -> first rest)
  in
  first (List.sort Int.compare (Refinement.singletons refinement ~depth))

let single_node_answers g =
  if Port_graph.order g = 1 then Some [| Task.Leader |] else None

let solve_s g ~depth =
  match single_node_answers g with
  | Some a -> Some a
  | None ->
      with_candidates g ~depth (fun refinement leader ->
          try_leader g refinement ~depth ~leader ~assign:(fun _ -> Some ()))

let pe_port_valid g ~leader v p =
  let u = Port_graph.neighbor_vertex g v p in
  u = leader || Paths.connected_avoiding g ~avoid:v u leader

let solve_pe g ~depth =
  match single_node_answers g with
  | Some a -> Some a
  | None ->
      with_candidates g ~depth (fun refinement leader ->
          try_leader g refinement ~depth ~leader ~assign:(fun members ->
              let deg = Port_graph.degree g (List.hd members) in
              let rec try_port p =
                if p = deg then None
                else if
                  List.for_all (fun v -> pe_port_valid g ~leader v p) members
                then Some p
                else try_port (p + 1)
              in
              try_port 0))

(* Joint DFS for a common port sequence that traces a simple path from
   every member to the leader simultaneously.  [arrival = true] (CPPE)
   additionally requires all members to agree on the far port at every
   hop and records it.  Sequences are explored in lexicographic order,
   bounded by [order g - 1] hops (simple paths). *)
let common_route g ~leader ~members ~arrival =
  let max_len = Port_graph.order g - 1 in
  let rec extend route_rev len positions visiteds =
    if List.for_all (fun x -> x = leader) positions then
      Some (List.rev route_rev)
    else if len >= max_len then None
    else if List.exists (fun x -> x = leader) positions then
      (* A member sitting at the leader would have to leave and could
         never come back on a simple path. *)
      None
    else begin
      let deg_min =
        List.fold_left (fun acc x -> min acc (Port_graph.degree g x))
          max_int positions
      in
      let rec try_port p =
        if p >= deg_min then None
        else begin
          let steps =
            List.map (fun x -> Port_graph.neighbor g x p) positions
          in
          let qs = List.map snd steps in
          let q0 = List.hd qs in
          let agree = (not arrival) || List.for_all (fun q -> q = q0) qs in
          let simple =
            List.for_all2
              (fun (u, _) visited -> not (List.mem u visited))
              steps visiteds
          in
          let result =
            if agree && simple then
              extend
                ((p, q0) :: route_rev)
                (len + 1)
                (List.map fst steps)
                (List.map2 (fun (u, _) vis -> u :: vis) steps visiteds)
            else None
          in
          match result with Some r -> Some r | None -> try_port (p + 1)
        end
      in
      try_port 0
    end
  in
  extend [] 0 members (List.map (fun v -> [ v ]) members)

let solve_route g ~depth ~arrival =
  with_candidates g ~depth (fun refinement leader ->
      try_leader g refinement ~depth ~leader ~assign:(fun members ->
          common_route g ~leader ~members ~arrival))

let solve_ppe g ~depth =
  match single_node_answers g with
  | Some a -> Some a
  | None -> (
      match solve_route g ~depth ~arrival:false with
      | None -> None
      | Some answers ->
          Some
            (Array.map
               (function
                 | Task.Leader -> Task.Leader
                 | Task.Follower pqs -> Task.Follower (List.map fst pqs))
               answers))

let solve_cppe g ~depth =
  match single_node_answers g with
  | Some a -> Some a
  | None -> solve_route g ~depth ~arrival:true

(* Scan depths from ψ_S up to the first discrete depth, where all four
   tasks are certainly solvable (every class is a singleton and a BFS
   shortest path provides each node's private route). *)
let scan g solve =
  if Port_graph.order g = 1 then Some 0
  else
    match Refinement.min_unique_depth g with
    | None -> None
    | Some start ->
        let t = Refinement.fixpoint g in
        let stop = Refinement.depth t in
        let rec go k =
          if k > stop then
            (* Unreachable for correct solvers; guards non-termination. *)
            None
          else if Option.is_some (solve g ~depth:k) then Some k
          else go (k + 1)
        in
        go start

let psi_s g = scan g (fun g ~depth -> solve_s g ~depth)
let psi_pe g = scan g (fun g ~depth -> solve_pe g ~depth)
let psi_ppe g = scan g (fun g ~depth -> solve_ppe g ~depth)
let psi_cppe g = scan g (fun g ~depth -> solve_cppe g ~depth)

let psi kind =
  match kind with
  | Task.S -> psi_s
  | Task.PE -> psi_pe
  | Task.PPE -> psi_ppe
  | Task.CPPE -> psi_cppe

let all g = List.map (fun kind -> (kind, psi kind g)) Task.all
