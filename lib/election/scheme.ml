type 'o t = {
  name : string;
  oracle : Shades_graph.Port_graph.t -> Shades_bits.Bitstring.t;
  rounds_of : advice:Shades_bits.Bitstring.t -> degree:int -> int;
  decide : advice:Shades_bits.Bitstring.t -> Shades_views.View_tree.t -> 'o;
}

type 'o run = { outputs : 'o array; rounds : int; advice_bits : int }

let run_with_advice ?max_rounds ?on_round ?tracer scheme g ~advice =
  let outputs, rounds =
    Shades_localsim.Full_info.run_adaptive ?max_rounds ?on_round ?tracer g
      ~advice ~rounds_of:scheme.rounds_of ~decide:scheme.decide
  in
  { outputs; rounds; advice_bits = Shades_bits.Bitstring.length advice }

let run ?on_round ?tracer scheme g =
  run_with_advice ?on_round ?tracer scheme g ~advice:(scheme.oracle g)

let run_sharded_with_advice ?domains ?on_round ?tracer scheme g ~advice =
  let outputs, rounds =
    Shades_localsim.Full_info.run_adaptive_sharded ?domains ?on_round ?tracer
      g ~advice ~rounds_of:scheme.rounds_of ~decide:scheme.decide
  in
  { outputs; rounds; advice_bits = Shades_bits.Bitstring.length advice }

let run_sharded ?domains ?on_round ?tracer scheme g =
  run_sharded_with_advice ?domains ?on_round ?tracer scheme g
    ~advice:(scheme.oracle g)

let run_async ?seed ?on_round ?tracer scheme g =
  let advice = scheme.oracle g in
  let outputs, rounds =
    Shades_localsim.Full_info.run_adaptive_async ?seed ?on_round ?tracer g
      ~advice ~rounds_of:scheme.rounds_of ~decide:scheme.decide
  in
  { outputs; rounds; advice_bits = Shades_bits.Bitstring.length advice }

let run_plan ~delay ?on_round ?tracer scheme g =
  let advice = scheme.oracle g in
  let outputs, rounds, makespan =
    Shades_localsim.Full_info.run_adaptive_plan ~delay ?on_round ?tracer g
      ~advice ~rounds_of:scheme.rounds_of ~decide:scheme.decide
  in
  ( { outputs; rounds; advice_bits = Shades_bits.Bitstring.length advice },
    makespan )
