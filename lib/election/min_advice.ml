module Port_graph = Shades_graph.Port_graph
module View_tree = Shades_views.View_tree

(* shadescheck: allow-file locality -- advice-minimality analysis runs
   on the oracle side: the advisor sees the whole graph (that is the
   advice model), so census/sharability search legitimately reads it *)

(* View census of a graph at the given depth: canonical key -> count. *)
let census ~depth g =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let key = View_tree.canonical_key (View_tree.of_graph g v ~depth) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    (Port_graph.vertices g);
  counts

let sharable_census censuses =
  (* Choose one count-1 view per graph such that the union of choices
     meets every graph's census in exactly one occurrence.  Backtracking
     over graphs; the partial check keeps the search tiny. *)
  let graphs = Array.of_list censuses in
  let m = Array.length graphs in
  let ok_for_all chosen =
    Array.for_all
      (fun census ->
        let total =
          List.fold_left
            (fun acc key ->
              acc + Option.value ~default:0 (Hashtbl.find_opt census key))
            0 chosen
        in
        total = 1)
      graphs
  in
  let rec assign i chosen =
    if i = m then ok_for_all chosen
    else begin
      let candidates =
        Hashtbl.fold
          (fun key count acc -> if count = 1 then key :: acc else acc)
          graphs.(i) []
        |> List.sort String.compare
      in
      List.exists
        (fun key ->
          let chosen' = if List.mem key chosen then chosen else key :: chosen in
          (* prune: the choice must not already overfill any census *)
          let feasible =
            Array.for_all
              (fun census ->
                let total =
                  List.fold_left
                    (fun acc k ->
                      acc
                      + Option.value ~default:0 (Hashtbl.find_opt census k))
                    0 chosen'
                in
                total <= 1)
              graphs
          in
          feasible && assign (i + 1) chosen')
        candidates
    end
  in
  assign 0 []

let sharable ~depth graphs = sharable_census (List.map (census ~depth) graphs)

let min_advice_strings ~depth graphs =
  let censuses = Array.of_list (List.map (census ~depth) graphs) in
  let m = Array.length censuses in
  if m = 0 then 0
  else begin
    if m > 20 then invalid_arg "Min_advice: too many graphs for exact DP";
    (* sharability per subset, then minimum partition into sharable
       subsets by subset DP. *)
    let full = (1 lsl m) - 1 in
    let subset_graphs mask =
      List.filteri (fun i _ -> (mask lsr i) land 1 = 1)
        (Array.to_list censuses)
    in
    let sharable_mask = Array.make (full + 1) false in
    for mask = 1 to full do
      sharable_mask.(mask) <- sharable_census (subset_graphs mask)
    done;
    let best = Array.make (full + 1) max_int in
    best.(0) <- 0;
    for mask = 1 to full do
      (* iterate over non-empty submasks containing the lowest set bit,
         so partitions are enumerated once *)
      let low = mask land -mask in
      let sub = ref mask in
      while !sub > 0 do
        if !sub land low <> 0 && sharable_mask.(!sub) then begin
          let rest = mask lxor !sub in
          if best.(rest) < max_int then
            best.(mask) <- min best.(mask) (best.(rest) + 1)
        end;
        sub := (!sub - 1) land mask
      done
    done;
    if best.(full) = max_int then
      invalid_arg "Min_advice: some graph admits no valid selection"
    else best.(full)
  end

(* View census keeping the member vertices: key -> vertex list. *)
let census_members ~depth g =
  let members = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let key = View_tree.canonical_key (View_tree.of_graph g v ~depth) in
      Hashtbl.replace members key
        (v :: Option.value ~default:[] (Hashtbl.find_opt members key)))
    (Port_graph.vertices g);
  members

let pe_port_valid g ~leader v p =
  let u = Port_graph.neighbor_vertex g v p in
  u = leader || Shades_graph.Paths.connected_avoiding g ~avoid:v u leader

let pe_sharable ~depth g1 g2 =
  let m1 = census_members ~depth g1 and m2 = census_members ~depth g2 in
  let count m key =
    List.length (Option.value ~default:[] (Hashtbl.find_opt m key))
  in
  let keys =
    List.sort_uniq String.compare
      (Hashtbl.fold
         (fun k _ acc -> k :: acc)
         m1
         (Hashtbl.fold (fun k _ acc -> k :: acc) m2 []))
  in
  (* Candidate leader views per graph: occur exactly once there. *)
  let singles m = List.filter (fun k -> count m k = 1) keys in
  let leader_sets =
    (* S = {s1} or {s1; s2}: must meet census_1 and census_2 exactly
       once each. *)
    List.concat_map
      (fun s1 ->
        List.filter_map
          (fun s2 ->
            let s = if s1 = s2 then [ s1 ] else [ s1; s2 ] in
            let hits m =
              List.fold_left (fun acc k -> acc + count m k) 0 s
            in
            if hits m1 = 1 && hits m2 = 1 then Some s else None)
          (singles m2))
      (singles m1)
  in
  let leader_of m s =
    (* the unique vertex of the graph whose view is in s *)
    List.concat_map
      (fun k -> Option.value ~default:[] (Hashtbl.find_opt m k))
      s
    |> function
    | [ v ] -> v
    | _ -> assert false
  in
  List.exists
    (fun s ->
      let l1 = leader_of m1 s and l2 = leader_of m2 s in
      List.for_all
        (fun key ->
          List.mem key s
          || begin
               (* one port must work for every occurrence in both graphs *)
               let members1 =
                 Option.value ~default:[] (Hashtbl.find_opt m1 key)
               in
               let members2 =
                 Option.value ~default:[] (Hashtbl.find_opt m2 key)
               in
               let deg =
                 match (members1, members2) with
                 | v :: _, _ -> Port_graph.degree g1 v
                 | [], v :: _ -> Port_graph.degree g2 v
                 | [], [] -> assert false
               in
               let rec try_port p =
                 p < deg
                 && ((List.for_all
                        (fun v -> pe_port_valid g1 ~leader:l1 v p)
                        members1
                     && List.for_all
                          (fun v -> pe_port_valid g2 ~leader:l2 v p)
                          members2)
                    || try_port (p + 1))
               in
               try_port 0
             end)
        keys)
    leader_sets

let bits_for count =
  (* smallest L with 2^{L+1} - 1 >= count *)
  let rec go l = if (1 lsl (l + 1)) - 1 >= count then l else go (l + 1) in
  go 0
