module Port_graph = Shades_graph.Port_graph
module Paths = Shades_graph.Paths

(* shadescheck: allow-file locality -- the task verifiers check node
   outputs against the ground-truth graph after a run; they sit on the
   adversary side of the model and never execute inside a node *)

type vertex = Port_graph.vertex

let find_leader answers =
  let leaders = ref [] in
  Array.iteri
    (fun v a -> match a with Task.Leader -> leaders := v :: !leaders | _ -> ())
    answers;
  match !leaders with
  | [ l ] -> Ok l
  | [] -> Error "no node output leader"
  | ls -> Error (Printf.sprintf "%d nodes output leader" (List.length ls))

let check_answers g answers ~valid =
  Result.bind (find_leader answers) (fun leader ->
      let n = Port_graph.order g in
      if Array.length answers <> n then Error "wrong number of answers"
      else begin
        let rec go v =
          if v = n then Ok leader
          else
            match answers.(v) with
            | Task.Leader -> go (v + 1)
            | Task.Follower payload -> (
                match valid g ~leader ~v payload with
                | Ok () -> go (v + 1)
                | Error e -> Error (Printf.sprintf "node %d: %s" v e))
        in
        go 0
      end)

let selection g answers =
  check_answers g answers ~valid:(fun _ ~leader:_ ~v:_ () -> Ok ())

(* PE validity of port [p] at [v]: the far endpoint is the leader or
   reaches the leader avoiding [v].  Checking this by BFS for every node
   is quadratic; but if the declared ports, read as a successor function,
   lead from [v] all the way to the leader, the successor walk itself is
   a simple path (a deterministic walk repeats a vertex only by entering
   a cycle) certifying every node on it.  So we resolve the successor
   walks first and only BFS the nodes whose walk degenerates. *)
let port_election g answers =
  Result.bind (find_leader answers) @@ fun leader ->
  let n = Port_graph.order g in
  if Array.length answers <> n then Error "wrong number of answers"
  else begin
    let exception Bad of string in
    try
      let succ =
        Array.mapi
          (fun v a ->
            match a with
            | Task.Leader -> v
            | Task.Follower p ->
                if p < 0 || p >= Port_graph.degree g v then
                  raise (Bad (Printf.sprintf "node %d: port out of range" v));
                Port_graph.neighbor_vertex g v p)
          answers
      in
      let status = Array.make n `Unknown in
      status.(leader) <- `Good;
      for v = 0 to n - 1 do
        if status.(v) = `Unknown then begin
          let rec follow stack x =
            match status.(x) with
            | `Good -> List.iter (fun y -> status.(y) <- `Good) stack
            | `Fallback | `On_stack ->
                List.iter (fun y -> status.(y) <- `Fallback) stack
            | `Unknown ->
                status.(x) <- `On_stack;
                follow (x :: stack) succ.(x)
          in
          follow [] v
        end
      done;
      for v = 0 to n - 1 do
        if status.(v) = `Fallback then begin
          let u = succ.(v) in
          if
            not
              (u = leader || Paths.connected_avoiding g ~avoid:v u leader)
          then
            raise
              (Bad
                 (Printf.sprintf
                    "node %d: its port is not the start of a simple path \
                     to %d"
                    v leader))
        end
      done;
      Ok leader
    with Bad e -> Error e
  end

(* Common core of PPE/CPPE: follow the outgoing ports, checking arrival
   ports when given, and require a nonempty simple walk ending at the
   leader. *)
let check_route g ~leader ~v route ~arrival =
  if route = [] then Error "empty path (non-leader must reach the leader)"
  else begin
    let rec go x visited = function
      | [] ->
          if x = leader then Ok ()
          else Error (Printf.sprintf "path ends at %d, not the leader" x)
      | (p, q) :: rest ->
          if p < 0 || p >= Port_graph.degree g x then
            Error (Printf.sprintf "port %d out of range" p)
          else begin
            let u, q' = Port_graph.neighbor g x p in
            match arrival with
            | true when q' <> q ->
                Error
                  (Printf.sprintf "arrival port mismatch: expected %d got %d"
                     q q')
            | _ ->
                if List.mem u visited then Error "path is not simple"
                else go u (u :: visited) rest
          end
    in
    go v [ v ] route
  end

let port_path_election g answers =
  check_answers g answers ~valid:(fun g ~leader ~v ps ->
      check_route g ~leader ~v (List.map (fun p -> (p, 0)) ps) ~arrival:false)

let complete_port_path_election g answers =
  check_answers g answers ~valid:(fun g ~leader ~v pqs ->
      check_route g ~leader ~v pqs ~arrival:true)
