(** Algorithms with advice (the paper's framework).

    A scheme pairs an oracle — which sees the whole port-labeled graph
    and emits one binary string — with a distributed algorithm that every
    node runs on (degree, advice, gathered view).  The same advice string
    goes to every node: it cannot add asymmetry, only expose it.

    Running a scheme reports the advice size in bits (the paper's
    complexity measure) and the number of communication rounds used. *)

type 'o t = {
  name : string;
  oracle : Shades_graph.Port_graph.t -> Shades_bits.Bitstring.t;
      (** Computes the advice for a given network. *)
  rounds_of : advice:Shades_bits.Bitstring.t -> degree:int -> int;
      (** How many rounds the node algorithm runs, derived from local
          knowledge only (advice + own degree). *)
  decide : advice:Shades_bits.Bitstring.t -> Shades_views.View_tree.t -> 'o;
      (** The node's output as a function of its gathered view. *)
}

type 'o run = {
  outputs : 'o array;  (** vertex-indexed (oracle-side bookkeeping) *)
  rounds : int;  (** communication rounds used *)
  advice_bits : int;  (** length of the advice string *)
}

(** Execute the scheme on [g] through the LOCAL simulator (the node
    algorithm really exchanges messages; nothing is shortcut).
    [on_round] is forwarded to the engine: per-round telemetry (round
    number, cumulative messages) for the sweep runtime.  [tracer]
    receives every execution event ({!Shades_trace.Event}) in the
    engine's deterministic order — attach a
    {!Shades_trace.Trace.recorder} to capture a replayable trace. *)
val run :
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  'o t ->
  Shades_graph.Port_graph.t ->
  'o run

(** [run_with_advice scheme g ~advice] runs the distributed part under a
    forced advice string — the primitive for fooling experiments, where
    the pigeonhole forces one string to serve two graphs.  [max_rounds]
    caps the engine's round budget: corruption campaigns set it near the
    reference round count so corrupted advice demanding an absurd view
    depth aborts with {!Shades_localsim.Engine.Did_not_terminate}
    instead of exchanging exponentially growing views. *)
val run_with_advice :
  ?max_rounds:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  'o t ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  'o run

(** Like {!run}, executed on the vertex-sharded parallel engine
    ({!Shades_localsim.Sharded_engine}) with [domains] worker domains.
    Outputs, round count, telemetry, and the trace stream are identical
    to {!run} for every domain count — sharding is an execution
    strategy, invisible in results and traces. *)
val run_sharded :
  ?domains:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  'o t ->
  Shades_graph.Port_graph.t ->
  'o run

(** {!run_sharded} under a forced advice string — the sharded analogue
    of {!run_with_advice}, and what the election daemon uses to serve
    sharded requests against its advice cache. *)
val run_sharded_with_advice :
  ?domains:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  'o t ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  'o run

(** Asynchronous execution (seeded adversarial delays, α-synchronizer):
    same outputs and round count as {!run} — the paper's remark that the
    synchronous LOCAL process survives asynchrony via time-stamps.
    Traced events additionally include [Sync_marker]s; see
    {!Shades_localsim.Async_engine.run}. *)
val run_async :
  ?seed:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  'o t ->
  Shades_graph.Port_graph.t ->
  'o run

(** Asynchronous execution under an {e explicit} delay plan
    ({!Shades_localsim.Async_engine.run_plan}); additionally returns the
    makespan — the virtual completion time the adversary's assignment
    achieved.  Outputs and rounds are plan-invariant; the makespan is
    what {!Shades_adversary.Schedule} maximizes. *)
val run_plan :
  delay:(round:int -> v:int -> port:int -> float) ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  'o t ->
  Shades_graph.Port_graph.t ->
  'o run * float
