module Port_graph = Shades_graph.Port_graph

(* shadescheck: allow-file locality -- global flood-cost model: this
   module simulates the whole flood centrally to count rounds/messages;
   it is analysis tooling, not a node algorithm run by the engine *)

type result = { received : bool array; rounds : int; messages : int }

let run g ~selection ~payload =
  ignore payload;
  let n = Port_graph.order g in
  if Array.length selection <> n then invalid_arg "Broadcast.run";
  let leader =
    let leaders =
      List.filter
        (fun v -> selection.(v) = Task.Leader)
        (Port_graph.vertices g)
    in
    match leaders with
    | [ l ] -> l
    | _ -> invalid_arg "Broadcast.run: need exactly one leader"
  in
  (* Synchronous flood: a node transmits on all its ports in the round
     after it first holds the payload. *)
  let received = Array.make n false in
  received.(leader) <- true;
  let frontier = ref [ leader ] in
  let rounds = ref 0 in
  let messages = ref 0 in
  while !frontier <> [] do
    incr rounds;
    let next = ref [] in
    List.iter
      (fun v ->
        for p = 0 to Port_graph.degree g v - 1 do
          incr messages;
          let u = Port_graph.neighbor_vertex g v p in
          if not received.(u) then begin
            received.(u) <- true;
            next := u :: !next
          end
        done)
      !frontier;
    frontier := !next
  done;
  (* the final round delivered nothing new: everything arrived by
     rounds - 1 unless the graph is a single node *)
  { received; rounds = max 0 (!rounds - 1); messages = !messages }
