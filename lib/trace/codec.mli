(** Compact binary codec for traces, built on {!Shades_bits}.

    File layout: a fixed byte header — the 4-byte magic ["SHTR"], one
    format-version byte, and the bit length of the payload as an 8-byte
    big-endian integer — followed by the payload bits packed MSB-first
    ({!Shades_bits.Bitstring.to_packed}).  The payload encodes the
    metadata and then each event as a gamma length prefix plus a
    self-contained body (3-bit constructor tag, gamma-coded fields), so
    a reader can skip events it does not understand and a truncated
    file is detected rather than misread.

    {b Compatibility policy}: {!format_version} is bumped on any layout
    change; {!decode} rejects every other version explicitly (like
    [Store.schema_version], a trace is never misread silently).  The
    length prefix exists so a {e future} minor revision could add
    constructors that old readers skip, but as of version 1 any change
    is a version bump. *)

val format_version : int
(** Currently [1]. *)

val encode : Trace.t -> string
(** The full binary file content.  Deterministic: equal traces encode
    byte-identically. *)

val decode : string -> (Trace.t, string) result
(** Inverse of {!encode}.  [Error] (never an exception) on bad magic, a
    foreign format version, truncation, or any malformed event. *)

val write : path:string -> Trace.t -> unit
(** {!encode} to a file (truncating any existing one). *)

val read : path:string -> (Trace.t, string) result
(** {!decode} a file; unreadable files are an [Error], not an
    exception. *)

val fold_events :
  string -> init:'a -> f:('a -> Event.t -> 'a) -> ('a * Trace.meta, string) result
(** Streaming read over an encoded blob: decode the header, then fold
    [f] over events one at a time without materializing the array.
    {!decode} is this with an accumulating buffer. *)
