(** Trace diffing: align two recordings, report the earliest divergence.

    Two traces of the same logical execution need not agree textually:
    the asynchronous engine interleaves nodes in delivery order and
    pads every round with synchronizer markers.  {!normalize} maps a
    trace onto its canonical skeleton — markers dropped, events sorted
    by {!Event.compare}'s [(round, kind, vertex, payload)] key — on
    which a synchronous run and any α-synchronizer run of the same
    algorithm coincide event-for-event.  The diff is then a merge walk
    of two sorted sequences: every event present on one side only is a
    divergence, reported earliest-first as [(round, vertex, event)].

    Use it sync-vs-async (markers modulo'd out), async-vs-async across
    seeds, or same-engine across code versions (the forensic use: two
    PRs' traces of one sweep point). *)

type divergence = {
  round : int;
  vertex : int;
  left : Event.t option;  (** present in the left trace only *)
  right : Event.t option;  (** present in the right trace only *)
}

val normalize : Trace.t -> Event.t list
(** Non-marker events in canonical order (see above). *)

val divergences : ?limit:int -> Trace.t -> Trace.t -> divergence list
(** All divergences in canonical order, capped at [limit] (default
    100).  [[]] means the traces agree modulo synchronizer markers. *)

val first : Trace.t -> Trace.t -> divergence option
(** The earliest divergence, if any. *)

val pp_divergence : divergence -> string
(** e.g. ["round 3 vertex 12: left has send r3 v12 p0 (37), right has \
    nothing"]. *)
