type divergence = {
  round : int;
  vertex : int;
  left : Event.t option;
  right : Event.t option;
}

let normalize (t : Trace.t) =
  Array.to_list t.Trace.events
  |> List.filter (fun e -> not (Event.is_sync_marker e))
  |> List.sort Event.compare

let of_event side e =
  let round = Event.round e and vertex = Event.vertex e in
  match side with
  | `Left -> { round; vertex; left = Some e; right = None }
  | `Right -> { round; vertex; left = None; right = Some e }

(* Merge walk over the two canonically sorted streams: equal heads
   advance together, the strictly smaller head is a one-sided event. *)
let divergences ?(limit = 100) a b =
  let rec go acc n xs ys =
    if n = 0 then acc
    else
      match (xs, ys) with
      | [], [] -> acc
      | x :: xs', [] -> go (of_event `Left x :: acc) (n - 1) xs' []
      | [], y :: ys' -> go (of_event `Right y :: acc) (n - 1) [] ys'
      | x :: xs', y :: ys' -> (
          match Event.compare x y with
          | 0 -> go acc n xs' ys'
          | c when c < 0 -> go (of_event `Left x :: acc) (n - 1) xs' ys
          | _ -> go (of_event `Right y :: acc) (n - 1) xs ys')
  in
  List.rev (go [] (max 0 limit) (normalize a) (normalize b))

let first a b =
  match divergences ~limit:1 a b with [] -> None | d :: _ -> Some d

let pp_divergence d =
  let side = function
    | Some e -> Event.to_string e
    | None -> "nothing"
  in
  Printf.sprintf "round %d vertex %d: left has %s, right has %s" d.round
    d.vertex (side d.left) (side d.right)
