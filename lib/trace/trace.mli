(** Recorded executions: trace values and the bounded ring-buffer sink.

    A {!t} is what one engine run left behind: metadata identifying the
    execution (engine kind and seed, graph order, advice length, a free
    label) plus the event sequence in emission order.  Recording is
    bounded: a {!recorder} keeps the most recent [capacity] events and
    counts what it dropped, so tracing a pathological run cannot exhaust
    memory — a dropped-prefix trace still diffs and replays over its
    retained suffix (the [dropped] count is stored, never hidden). *)

type engine = Sync | Async of { seed : int }

type meta = {
  engine : engine;
  graph_order : int;
  advice_bits : int;
  label : string;  (** free-form: scheme name, family point, ... *)
}

type t = {
  meta : meta;
  dropped : int;  (** events that overflowed the recorder's capacity *)
  events : Event.t array;  (** emission order; oldest retained first *)
}

val engine_to_string : engine -> string
(** ["sync"] or ["async(seed=N)"]. *)

(** {1 Recording} *)

type recorder

val default_capacity : int
(** [1_048_576] events — far above any instance this repo builds. *)

val recorder : ?capacity:int -> unit -> recorder
(** A fresh bounded sink.  [capacity] (default {!default_capacity})
    must be positive; once full, each new event evicts the oldest. *)

val emit : recorder -> Event.t -> unit
(** The function to hand to an engine's [?tracer] hook (partially
    applied: [Trace.emit r]). *)

val total : recorder -> int
(** Events emitted so far, including dropped ones. *)

val capture : recorder -> meta -> t
(** Freeze the retained events into a trace.  The recorder stays
    usable; capturing twice without intervening emits yields equal
    traces. *)

(** {1 Statistics} *)

type stats = {
  events : int;  (** retained events *)
  dropped : int;
  rounds : int;  (** number of [Round_start] events *)
  sends : int;
  delivers : int;
  decides : int;
  halts : int;
  advice_reads : int;
  sync_markers : int;
  crashes : int;  (** [Crash] events (adversarial fault plans) *)
  send_size_total : int;  (** sum of [Send] sizes *)
  max_round : int;
}

val stats : t -> stats
(** One pass over the events; [max_round] is the largest round stamp
    seen (0 for an event-free trace). *)

val per_round_sends : t -> (int * int) list
(** [(round, sends in that round)] for every round with at least one
    [Send], ascending — the per-round summary the sweep runtime feeds
    into [Metrics] histograms (it coincides with the engine's
    [on_round] message deltas). *)
