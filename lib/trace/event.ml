type t =
  | Round_start of { round : int }
  | Send of { round : int; v : int; port : int; size : int }
  | Deliver of { round : int; v : int; port : int; size : int }
  | Decide of { v : int; round : int }
  | Halt of { v : int; round : int }
  | Advice_read of { v : int; bits : int }
  | Sync_marker of { round : int; v : int; port : int }
  | Crash of { v : int; round : int }

let round = function
  | Round_start { round }
  | Send { round; _ }
  | Deliver { round; _ }
  | Decide { round; _ }
  | Halt { round; _ }
  | Sync_marker { round; _ }
  | Crash { round; _ } ->
      round
  | Advice_read _ -> 0

let vertex = function
  | Round_start _ -> -1
  | Send { v; _ }
  | Deliver { v; _ }
  | Decide { v; _ }
  | Halt { v; _ }
  | Advice_read { v; _ }
  | Sync_marker { v; _ }
  | Crash { v; _ } ->
      v

let is_sync_marker = function Sync_marker _ -> true | _ -> false

let kind_rank = function
  | Round_start _ -> 0
  | Advice_read _ -> 1
  | Send _ -> 2
  | Deliver _ -> 3
  | Decide _ -> 4
  | Halt _ -> 5
  | Sync_marker _ -> 6
  | Crash _ -> 7

(* The payload fields not already covered by (round, rank, vertex). *)
let extras = function
  | Round_start _ | Decide _ | Halt _ | Crash _ -> (0, 0)
  | Send { port; size; _ } | Deliver { port; size; _ } -> (port, size)
  | Advice_read { bits; _ } -> (bits, 0)
  | Sync_marker { port; _ } -> (port, 0)

let compare a b =
  let key e = (round e, kind_rank e, vertex e, extras e) in
  Stdlib.compare (key a) (key b)

let equal a b = a = b

let to_string = function
  | Round_start { round } -> Printf.sprintf "round-start r%d" round
  | Send { round; v; port; size } ->
      Printf.sprintf "send r%d v%d p%d (%d)" round v port size
  | Deliver { round; v; port; size } ->
      Printf.sprintf "deliver r%d v%d p%d (%d)" round v port size
  | Decide { v; round } -> Printf.sprintf "decide r%d v%d" round v
  | Halt { v; round } -> Printf.sprintf "halt r%d v%d" round v
  | Advice_read { v; bits } -> Printf.sprintf "advice-read v%d (%d bits)" v bits
  | Sync_marker { round; v; port } ->
      Printf.sprintf "sync-marker r%d v%d p%d" round v port
  | Crash { v; round } -> Printf.sprintf "crash r%d v%d" round v

let pp fmt e = Format.pp_print_string fmt (to_string e)
