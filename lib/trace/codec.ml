module Bitstring = Shades_bits.Bitstring
module W = Shades_bits.Writer
module R = Shades_bits.Reader

(* Version 2 added the [Crash] event (tag 7) for adversarial fault
   plans; version bumps happen in Shades_versions.Versions (the
   registry shadescheck's version-drift rule enforces) and require
   re-blessing the committed trace baselines
   (`trace bless -b BENCH_tiny/traces`). *)
let format_version = Shades_versions.Versions.trace_format
let magic = Shades_versions.Versions.shtr_magic
let header_bytes = String.length magic + 1 + 8 (* magic, version, bit length *)

(* --- event bodies: 3-bit constructor tag + gamma-coded fields --- *)

let write_event w e =
  let body = W.create () in
  W.fixed body ~width:3 (Event.kind_rank e);
  (match e with
  | Event.Round_start { round } -> W.gamma body round
  | Event.Advice_read { v; bits } ->
      W.gamma body v;
      W.gamma body bits
  | Event.Send { round; v; port; size } | Event.Deliver { round; v; port; size }
    ->
      W.gamma body round;
      W.gamma body v;
      W.gamma body port;
      W.gamma body size
  | Event.Decide { v; round } | Event.Halt { v; round } ->
      W.gamma body v;
      W.gamma body round
  | Event.Sync_marker { round; v; port } ->
      W.gamma body round;
      W.gamma body v;
      W.gamma body port
  | Event.Crash { v; round } ->
      W.gamma body v;
      W.gamma body round);
  (* length-prefixed so a reader can resynchronize / skip *)
  W.gamma w (W.length body);
  W.bits w (W.contents body)

let read_event r =
  let body_len = R.gamma r in
  if R.remaining r < body_len then failwith "truncated event body";
  let before = R.remaining r in
  let tag = R.fixed r ~width:3 in
  let e =
    match tag with
    | 0 -> Event.Round_start { round = R.gamma r }
    | 1 ->
        let v = R.gamma r in
        let bits = R.gamma r in
        Event.Advice_read { v; bits }
    | 2 | 3 ->
        let round = R.gamma r in
        let v = R.gamma r in
        let port = R.gamma r in
        let size = R.gamma r in
        if tag = 2 then Event.Send { round; v; port; size }
        else Event.Deliver { round; v; port; size }
    | 4 | 5 ->
        let v = R.gamma r in
        let round = R.gamma r in
        if tag = 4 then Event.Decide { v; round } else Event.Halt { v; round }
    | 6 ->
        let round = R.gamma r in
        let v = R.gamma r in
        let port = R.gamma r in
        Event.Sync_marker { round; v; port }
    | 7 ->
        let v = R.gamma r in
        let round = R.gamma r in
        Event.Crash { v; round }
    | t -> failwith (Printf.sprintf "unknown event tag %d" t)
  in
  if before - R.remaining r <> body_len then
    failwith "event body length mismatch";
  e

(* Seeds may be negative in principle: sign bit + gamma magnitude. *)
let write_signed w v =
  W.bit w (v < 0);
  W.gamma w (abs v)

let read_signed r =
  let neg = R.bit r in
  let m = R.gamma r in
  if neg then -m else m

let write_string w s =
  W.gamma w (String.length s);
  String.iter (fun c -> W.fixed w ~width:8 (Char.code c)) s

let read_string r =
  let n = R.gamma r in
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (R.fixed r ~width:8))
  done;
  Bytes.to_string b

let encode (t : Trace.t) =
  let w = W.create () in
  (match t.Trace.meta.Trace.engine with
  | Trace.Sync -> W.bit w false
  | Trace.Async { seed } ->
      W.bit w true;
      write_signed w seed);
  W.gamma w t.Trace.meta.Trace.graph_order;
  W.gamma w t.Trace.meta.Trace.advice_bits;
  write_string w t.Trace.meta.Trace.label;
  W.gamma w t.Trace.dropped;
  W.gamma w (Array.length t.Trace.events);
  Array.iter (write_event w) t.Trace.events;
  let bits = W.contents w in
  let packed = Bitstring.to_packed bits in
  let buf = Buffer.create (header_bytes + Bytes.length packed) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr format_version);
  let len = Bitstring.length bits in
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((len lsr (8 * i)) land 0xff))
  done;
  Buffer.add_bytes buf packed;
  Buffer.contents buf

(* Header parse shared by [decode] and [fold_events]: returns a bit
   reader positioned at the start of the payload. *)
let open_blob s =
  if String.length s < header_bytes then Error "truncated header"
  else if String.sub s 0 (String.length magic) <> magic then
    Error "bad magic: not a shades trace file"
  else begin
    let version = Char.code s.[String.length magic] in
    if version <> format_version then
      Error
        (Printf.sprintf "trace format version %d, this build reads version %d"
           version format_version)
    else begin
      let bit_len = ref 0 in
      for i = 0 to 7 do
        bit_len := (!bit_len lsl 8) lor Char.code s.[String.length magic + 1 + i]
      done;
      let bit_len = !bit_len in
      let payload_bytes = (bit_len + 7) / 8 in
      if bit_len < 0 || String.length s <> header_bytes + payload_bytes then
        Error
          (Printf.sprintf "payload truncated: header promises %d bits" bit_len)
      else
        let packed = Bytes.of_string (String.sub s header_bytes payload_bytes) in
        Ok (R.of_bitstring (Bitstring.of_packed packed bit_len))
    end
  end

let read_meta r =
  let engine =
    if R.bit r then Trace.Async { seed = read_signed r } else Trace.Sync
  in
  let graph_order = R.gamma r in
  let advice_bits = R.gamma r in
  let label = read_string r in
  let dropped = R.gamma r in
  let count = R.gamma r in
  ({ Trace.engine; graph_order; advice_bits; label }, dropped, count)

let fold_events s ~init ~f =
  match open_blob s with
  | Error _ as e -> e
  | Ok r -> (
      try
        let meta, _dropped, count = read_meta r in
        let acc = ref init in
        for _ = 1 to count do
          acc := f !acc (read_event r)
        done;
        if not (R.at_end r) then
          Error (Printf.sprintf "%d trailing bits after last event" (R.remaining r))
        else Ok (!acc, meta)
      with
      | R.Out_of_bits -> Error "truncated event stream"
      | Failure msg -> Error msg)

let decode s =
  match open_blob s with
  | Error _ as e -> e
  | Ok r -> (
      try
        let meta, dropped, count = read_meta r in
        (* explicit loop: Array.init's application order is unspecified *)
        let events = Array.make count (Event.Round_start { round = 0 }) in
        for i = 0 to count - 1 do
          events.(i) <- read_event r
        done;
        if not (R.at_end r) then
          Error (Printf.sprintf "%d trailing bits after last event" (R.remaining r))
        else Ok { Trace.meta; dropped; events }
      with
      | R.Out_of_bits -> Error "truncated event stream"
      | Failure msg -> Error msg)

let write ~path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode t))

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> decode s
  | exception Sys_error msg -> Error msg
