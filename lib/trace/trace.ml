type engine = Sync | Async of { seed : int }

type meta = {
  engine : engine;
  graph_order : int;
  advice_bits : int;
  label : string;
}

type t = { meta : meta; dropped : int; events : Event.t array }

let engine_to_string = function
  | Sync -> "sync"
  | Async { seed } -> Printf.sprintf "async(seed=%d)" seed

(* The ring grows geometrically up to [capacity] and only then starts
   evicting: a short run never pays for the full buffer. *)
type recorder = {
  capacity : int;
  mutable buf : Event.t array;
  mutable len : int;  (** filled slots (= Array.length buf once wrapped) *)
  mutable next : int;  (** write position once the ring is full *)
  mutable total : int;
}

let default_capacity = 1_048_576

let dummy = Event.Round_start { round = 0 }

let recorder ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.recorder: capacity must be positive";
  { capacity; buf = [||]; len = 0; next = 0; total = 0 }

let emit r e =
  if r.len < r.capacity then begin
    if r.len = Array.length r.buf then begin
      let grown =
        Array.make (min r.capacity (max 256 (2 * Array.length r.buf))) dummy
      in
      Array.blit r.buf 0 grown 0 r.len;
      r.buf <- grown
    end;
    r.buf.(r.len) <- e;
    r.len <- r.len + 1
  end
  else begin
    r.buf.(r.next) <- e;
    r.next <- (r.next + 1) mod r.capacity
  end;
  r.total <- r.total + 1

let total r = r.total

let capture r meta =
  let events =
    if r.total <= r.capacity then Array.sub r.buf 0 r.len
    else Array.init r.capacity (fun i -> r.buf.((r.next + i) mod r.capacity))
  in
  { meta; dropped = r.total - Array.length events; events }

type stats = {
  events : int;
  dropped : int;
  rounds : int;
  sends : int;
  delivers : int;
  decides : int;
  halts : int;
  advice_reads : int;
  sync_markers : int;
  crashes : int;
  send_size_total : int;
  max_round : int;
}

let stats (t : t) =
  let s =
    ref
      {
        events = Array.length t.events;
        dropped = t.dropped;
        rounds = 0;
        sends = 0;
        delivers = 0;
        decides = 0;
        halts = 0;
        advice_reads = 0;
        sync_markers = 0;
        crashes = 0;
        send_size_total = 0;
        max_round = 0;
      }
  in
  Array.iter
    (fun e ->
      let c = !s in
      let c = { c with max_round = max c.max_round (Event.round e) } in
      s :=
        (match e with
        | Event.Round_start _ -> { c with rounds = c.rounds + 1 }
        | Event.Send { size; _ } ->
            {
              c with
              sends = c.sends + 1;
              send_size_total = c.send_size_total + size;
            }
        | Event.Deliver _ -> { c with delivers = c.delivers + 1 }
        | Event.Decide _ -> { c with decides = c.decides + 1 }
        | Event.Halt _ -> { c with halts = c.halts + 1 }
        | Event.Advice_read _ -> { c with advice_reads = c.advice_reads + 1 }
        | Event.Sync_marker _ -> { c with sync_markers = c.sync_markers + 1 }
        | Event.Crash _ -> { c with crashes = c.crashes + 1 }))
    t.events;
  !s

let per_round_sends (t : t) =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      match e with
      | Event.Send { round; _ } ->
          Hashtbl.replace tbl round
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl round))
      | _ -> ())
    t.events;
  Hashtbl.fold (fun r c acc -> (r, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
