module Json = Shades_json.Json

let key_of_label label =
  String.map
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | ',' | '=' | '-' | '_' -> c
      | _ -> '_')
    label

let file_of_key key = key ^ ".shtr"

let digest trace = Digest.to_hex (Digest.string (Codec.encode trace))

type entry = { file : string; key : string; digest : string; events : int }

type manifest = { version : int; entries : entry list }

let manifest_file = "manifest.json"

(* --- file io (tiny, local: the codec's own io decodes eagerly, but
   the gate's fast path needs the raw bytes for digesting) --- *)

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Ok text
  | exception Sys_error msg -> Error ("baseline: " ^ msg)

(* --- manifest codec (same one-entry-per-line discipline as the
   sharded results store's manifest) --- *)

let json_of_entry e =
  Json.Obj
    [
      ("file", String e.file);
      ("key", String e.key);
      ("digest", String e.digest);
      ("events", Int e.events);
    ]

let encode_manifest m =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "{\"version\":%d,\"entries\":[" m.version);
  List.iteri
    (fun i e ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf (Json.to_string (json_of_entry e)))
    m.entries;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let ( let* ) = Result.bind

let need what = function
  | Some v -> Ok v
  | None -> Error ("baseline: manifest missing " ^ what)

let as_string what = function
  | Json.String s -> Ok s
  | _ -> Error ("baseline: manifest " ^ what ^ " is not a string")

let as_int what = function
  | Json.Int i -> Ok i
  | _ -> Error ("baseline: manifest " ^ what ^ " is not an integer")

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let entry_of_json j =
  let* file = need "file" (Json.member "file" j) in
  let* file = as_string "file" file in
  let* key = need "key" (Json.member "key" j) in
  let* key = as_string "key" key in
  let* digest = need "digest" (Json.member "digest" j) in
  let* digest = as_string "digest" digest in
  let* events = need "events" (Json.member "events" j) in
  let* events = as_int "events" events in
  Ok { file; key; digest; events }

let decode_manifest text =
  let* j = Json.of_string text in
  let* version = need "version" (Json.member "version" j) in
  let* version = as_int "version" version in
  if version <> Codec.format_version then
    Error
      (Printf.sprintf
         "baseline: manifest is for trace format version %d (this build reads \
          version %d) — re-bless the baselines"
         version Codec.format_version)
  else
    let* entries = need "entries" (Json.member "entries" j) in
    let* entries =
      match entries with
      | Json.List items -> map_result entry_of_json items
      | _ -> Error "baseline: manifest entries is not a list"
    in
    Ok { version; entries }

let load_manifest ~dir =
  let* text = read_file (Filename.concat dir manifest_file) in
  decode_manifest text

let load ~dir e =
  let* blob = read_file (Filename.concat dir e.file) in
  let got = Digest.to_hex (Digest.string blob) in
  if got <> e.digest then
    Error
      (Printf.sprintf "baseline: %s digest mismatch (manifest %s, file %s)"
         e.file e.digest got)
  else Codec.decode blob

let save ~dir traces =
  let keys = List.map fst traces in
  List.iteri
    (fun i k ->
      if List.exists (String.equal k) (List.filteri (fun j _ -> j < i) keys)
      then invalid_arg ("Baseline.save: duplicate job key " ^ k))
    keys;
  let entries =
    List.map
      (fun (key, trace) ->
        ( {
            file = file_of_key key;
            key;
            digest = digest trace;
            events = Array.length trace.Trace.events;
          },
          trace ))
      traces
  in
  (* a trace whose digest the previous manifest already lists is left
     untouched on disk: re-blessing replaces only what changed *)
  let previous =
    match load_manifest ~dir with Ok m -> m.entries | Error _ -> []
  in
  let prev_digests = List.map (fun e -> (e.file, e.digest)) previous in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (e, trace) ->
      let unchanged = List.assoc_opt e.file prev_digests = Some e.digest in
      if not unchanged then
        write_file (Filename.concat dir e.file) (Codec.encode trace))
    entries;
  List.iter
    (fun old ->
      if not (List.exists (fun (e, _) -> e.file = old.file) entries) then
        try Sys.remove (Filename.concat dir old.file) with Sys_error _ -> ())
    previous;
  let m = { version = Codec.format_version; entries = List.map fst entries } in
  write_file (Filename.concat dir manifest_file) (encode_manifest m);
  m

(* --- the gate --- *)

type verdict =
  | Identical
  | Divergent of {
      job : string;
      round : int;
      vertex : int;
      event : Event.t option;
      baseline_event : Event.t option;
    }
  | Missing
  | Corrupt of string

type report = { jobs : (string * verdict) list; stale : string list }

let gate ~dir traces =
  let* m = load_manifest ~dir in
  let verdict (key, trace) =
    match List.find_opt (fun e -> e.key = key) m.entries with
    | None -> (key, Missing)
    | Some e when digest trace = e.digest ->
        (* fast path: byte-identical recording, baseline not decoded *)
        (key, Identical)
    | Some e -> (
        match load ~dir e with
        | Error msg -> (key, Corrupt msg)
        | Ok baseline -> (
            match Diff.first baseline trace with
            | None ->
                (* encodings differ (e.g. metadata) but the event
                   streams agree modulo markers: behaviourally clean *)
                (key, Identical)
            | Some d ->
                ( key,
                  Divergent
                    {
                      job = key;
                      round = d.Diff.round;
                      vertex = d.Diff.vertex;
                      event = d.Diff.right;
                      baseline_event = d.Diff.left;
                    } )))
  in
  let jobs = List.map verdict traces in
  let current_keys = List.map fst traces in
  let stale =
    List.filter_map
      (fun e ->
        if List.exists (String.equal e.key) current_keys then None
        else Some e.key)
      m.entries
  in
  Ok { jobs; stale }

let clean r =
  r.stale = [] && List.for_all (fun (_, v) -> v = Identical) r.jobs

let has_corrupt r =
  List.exists (fun (_, v) -> match v with Corrupt _ -> true | _ -> false) r.jobs

let pp_side = function
  | Some e -> Event.to_string e
  | None -> "nothing"

let pp_verdict key = function
  | Identical -> key ^ ": identical"
  | Divergent { round; vertex; event; baseline_event; _ } ->
      Printf.sprintf
        "%s: first divergence at round %d vertex %d: baseline has %s, current \
         has %s"
        key round vertex (pp_side baseline_event) (pp_side event)
  | Missing -> key ^ ": no blessed baseline (new job? re-bless)"
  | Corrupt msg -> Printf.sprintf "%s: baseline unreadable: %s" key msg

let pp_report r =
  List.filter_map
    (fun (key, v) -> if v = Identical then None else Some (pp_verdict key v))
    r.jobs
  @ List.map (fun key -> key ^ ": blessed but not in the current grid") r.stale

let report_to_json r =
  let side = function
    | Some e -> Json.String (Event.to_string e)
    | None -> Json.Null
  in
  let job (key, v) =
    let fields =
      match v with
      | Identical -> [ ("verdict", Json.String "identical") ]
      | Divergent { round; vertex; event; baseline_event; _ } ->
          [
            ("verdict", Json.String "divergent");
            ("round", Json.Int round);
            ("vertex", Json.Int vertex);
            ("baseline_event", side baseline_event);
            ("event", side event);
          ]
      | Missing -> [ ("verdict", Json.String "missing") ]
      | Corrupt msg ->
          [ ("verdict", Json.String "corrupt"); ("error", Json.String msg) ]
    in
    Json.Obj (("job", Json.String key) :: fields)
  in
  Json.Obj
    [
      ("clean", Json.Bool (clean r));
      ("jobs", Json.List (List.map job r.jobs));
      ("stale", Json.List (List.map (fun k -> Json.String k) r.stale));
    ]
