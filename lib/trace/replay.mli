(** Deterministic replay: re-execute a run against its recorded trace.

    The engines are deterministic (the async one per seed), so
    re-executing the same algorithm on the same graph with the same
    advice must reproduce the recorded event stream {e exactly}, in
    order.  {!run} wires a checking tracer into a re-execution and
    stops at the first event that disagrees — turning "the outputs
    differ" into "round 3, node 12, expected [send r3 v12 p0 (37)] but
    saw [send r3 v12 p1 (37)]".

    A trace whose recorder overflowed ([dropped > 0]) cannot anchor the
    re-execution to its first event; {!run} rejects it. *)

type divergence = {
  index : int;  (** position in the recorded event sequence *)
  expected : Event.t option;  (** recorded; [None] = extra live event *)
  actual : Event.t option;  (** emitted; [None] = execution ended early *)
}

val location : divergence -> int * int
(** [(round, vertex)] of the divergence, taken from the recorded event
    when present, otherwise from the live one ([vertex] is [-1] for
    [Round_start]). *)

val pp_divergence : divergence -> string
(** e.g. ["event 17 (round 3, vertex 12): expected send r3 v12 p0 (37), \
    got send r3 v12 p1 (37)"]. *)

val run : Trace.t -> ((Event.t -> unit) -> unit) -> (unit, divergence) result
(** [run trace exec] calls [exec tracer] — [exec] must re-run the
    recorded execution, passing [tracer] to the engine — and compares
    every emitted event against [trace.events].  The re-execution is
    aborted at the first divergent event (via an internal exception the
    engines do not observe); exceptions other than the internal abort
    propagate.  [Ok ()] iff the streams are identical and equally
    long.
    @raise Invalid_argument if [trace.dropped > 0]. *)
