(** Typed execution events emitted by the LOCAL simulators.

    One event per observable simulator action, stamped with the
    (1-based) synchronizer round it belongs to — round 0 is
    initialization.  Vertex indexes are the oracle-side bookkeeping
    indexes (the engines' [v]); nodes themselves never see them, so a
    trace is a referee-side artifact, like the verifiers.

    [Sync_marker] is emitted only by the asynchronous engine: the bare
    end-of-round marker the α-synchronizer sends on every port where the
    algorithm itself sent nothing.  Markers are execution scaffolding,
    not algorithm behaviour — {!Diff.normalize} drops them, which is
    what makes a synchronous and an asynchronous trace of the same run
    comparable. *)

type t =
  | Round_start of { round : int }
      (** the first node entered (sync: all nodes entered) this round *)
  | Send of { round : int; v : int; port : int; size : int }
      (** node [v] emitted a message on its port [port]; [size] is the
          engine-supplied message measure (0 when unmeasured) *)
  | Deliver of { round : int; v : int; port : int; size : int }
      (** a message arrived at node [v] on its own port [port] and was
          consumed by its round-[round] step *)
  | Decide of { v : int; round : int }
      (** node [v]'s output became [Some _] after round [round] *)
  | Halt of { v : int; round : int }
      (** node [v] stopped participating (here: at its decision round) *)
  | Advice_read of { v : int; bits : int }
      (** node [v] received the advice string at initialization *)
  | Sync_marker of { round : int; v : int; port : int }
      (** α-synchronizer end-of-round marker (async engine only) *)
  | Crash of { v : int; round : int }
      (** node [v] crash-stopped at the start of round [round] (an
          adversarial fault plan, {!Shades_localsim.Engine.crash}): from
          this round on it sends nothing, never steps, and never
          decides; peers observe only silence.  [round = 0] means the
          node was crashed from initialization and never acted at
          all. *)

val round : t -> int
(** The round an event belongs to ([Advice_read] is round 0). *)

val vertex : t -> int
(** The vertex an event belongs to; [-1] for [Round_start]. *)

val is_sync_marker : t -> bool
(** [true] exactly on [Sync_marker _] — the events {!Diff.normalize}
    drops. *)

val kind_rank : t -> int
(** Total order on constructors used by {!compare}: [Round_start] <
    [Advice_read] < [Send] < [Deliver] < [Decide] < [Halt] <
    [Sync_marker] < [Crash]. *)

val compare : t -> t -> int
(** Canonical order: by round, then {!kind_rank}, then vertex, then the
    remaining payload — the order {!Diff} normalizes traces into. *)

val equal : t -> t -> bool
(** Structural equality (also: {!compare}'s key covers every field, so
    [equal a b] iff [compare a b = 0]). *)

val to_string : t -> string
(** One compact human-readable token, e.g. [send r3 v12 p0 (37)]. *)

val pp : Format.formatter -> t -> unit
(** {!to_string} as a [Format] printer. *)
