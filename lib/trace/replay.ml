type divergence = {
  index : int;
  expected : Event.t option;
  actual : Event.t option;
}

let location d =
  match (d.expected, d.actual) with
  | Some e, _ | None, Some e -> (Event.round e, Event.vertex e)
  | None, None -> (0, -1)

let pp_divergence d =
  let round, vertex = location d in
  let side = function
    | Some e -> Event.to_string e
    | None -> "nothing (stream ended)"
  in
  Printf.sprintf "event %d (round %d, vertex %d): expected %s, got %s" d.index
    round vertex (side d.expected) (side d.actual)

exception Diverged of divergence

let run (trace : Trace.t) exec =
  if trace.Trace.dropped > 0 then
    invalid_arg
      (Printf.sprintf
         "Replay.run: trace dropped %d events; only complete traces replay"
         trace.Trace.dropped);
  let events = trace.Trace.events in
  let cursor = ref 0 in
  let tracer e =
    let i = !cursor in
    if i >= Array.length events then
      raise (Diverged { index = i; expected = None; actual = Some e });
    if not (Event.equal events.(i) e) then
      raise (Diverged { index = i; expected = Some events.(i); actual = Some e });
    cursor := i + 1
  in
  match exec tracer with
  | () ->
      if !cursor < Array.length events then
        Error
          {
            index = !cursor;
            expected = Some events.(!cursor);
            actual = None;
          }
      else Ok ()
  | exception Diverged d -> Error d
