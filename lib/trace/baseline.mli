(** Blessed baseline traces: a versioned on-disk store of known-good
    recordings, and the forensics gate that compares a fresh run
    against it.

    A baseline store is a directory holding one {!Codec}-encoded trace
    file per job ([<key>.shtr], where the key is the job's stable
    identifier — see {!key_of_label}) plus a [manifest.json] naming
    every file, its key, a content digest and its event count — the
    same digest-manifest scheme as the sharded results store
    ([Shades_runtime.Store.Sharded]), so the two committed baselines
    under [BENCH_tiny/] stay structurally alike.

    Digests are hex MD5 over the {!Codec.encode} blob.  Traces carry no
    wall-clock content and the codec is deterministic, so a digest is
    stable across machines, runs and domain counts; the gate's fast
    path compares digests only and {e never decodes} a baseline file
    whose digest matches the current trace.  The manifest carries
    {!Codec.format_version}: a codec layout change invalidates every
    blessed trace at load time instead of misreading it — re-bless
    after bumping the version.

    The point of the gate is forensics: where the measurement gate says
    "messages changed", the trace gate answers {e where} — the first
    divergent [(round, vertex, event)] of each drifted job, computed by
    {!Diff} over canonical event order. *)

(** {1 Keys and manifest} *)

val key_of_label : string -> string
(** Stable file-system-safe key derived from a job label: characters
    outside [[A-Za-z0-9.,=_-]] are mapped to ['_'].  The sweep runtime
    derives its job keys through this exact function
    ([Shades_runtime.Sweep.key_of_job]), which is what lets [trace
    bless] and [trace gate] agree on file names across processes. *)

val file_of_key : string -> string
(** [key ^ ".shtr"] — the trace file name inside the store directory. *)

val digest : Trace.t -> string
(** Hex MD5 of {!Codec.encode} — the manifest's content digest. *)

type entry = {
  file : string;  (** file name inside the store directory *)
  key : string;  (** the job's stable key *)
  digest : string;  (** hex MD5 of the encoded trace file *)
  events : int;  (** retained events, for the manifest reader's benefit *)
}

type manifest = { version : int; entries : entry list }
(** [version] is the {!Codec.format_version} the traces were encoded
    with; every other version is rejected at load time. *)

val manifest_file : string
(** ["manifest.json"]. *)

val save : dir:string -> (string * Trace.t) list -> manifest
(** [save ~dir traces] blesses the keyed [traces]: writes one encoded
    file per trace plus the manifest under [dir] (created if missing).
    Mirroring [Shades_runtime.Store.Sharded.save], a trace whose
    digest the existing manifest already lists is left untouched on
    disk, and files from a previous blessing whose key no longer
    exists are removed.
    @raise Invalid_argument on duplicate keys. *)

val load_manifest : dir:string -> (manifest, string) result
(** Read and decode [manifest.json]; [Error] on a missing or malformed
    file or a foreign {!Codec.format_version}. *)

val load : dir:string -> entry -> (Trace.t, string) result
(** Decode one blessed trace and verify its digest against the
    manifest entry — a tampered or stale file is an [Error], never a
    silently wrong baseline. *)

(** {1 The gate} *)

(** Per-job verdict of a gate run.  [Divergent] carries the {e first}
    divergence in canonical event order: [baseline_event] is what the
    blessed trace holds at that point, [event] what the current run
    produced ([None] on either side means that side has no event
    there).  [Missing] and [Corrupt] keep shape drift and decode
    failures distinct from behavioural divergence — they map to
    different exit codes at the CLI. *)
type verdict =
  | Identical
  | Divergent of {
      job : string;
      round : int;
      vertex : int;
      event : Event.t option;
      baseline_event : Event.t option;
    }
  | Missing  (** the job has no entry in the baseline manifest *)
  | Corrupt of string  (** baseline entry unreadable: digest/decode error *)

type report = {
  jobs : (string * verdict) list;  (** one verdict per current job, in order *)
  stale : string list;
      (** baseline keys with no corresponding current job — shape
          drift on the baseline side *)
}

val gate : dir:string -> (string * Trace.t) list -> (report, string) result
(** [gate ~dir traces] compares the keyed current [traces] against the
    blessed store under [dir].  Per job: digest match → [Identical]
    (the baseline file is not decoded); mismatch → the baseline is
    loaded and {!Diff.first} locates the earliest divergence.  [Error]
    only when the manifest itself cannot be read — per-job problems
    land in the report as [Corrupt]. *)

val clean : report -> bool
(** [true] iff every verdict is [Identical] and no baseline entry is
    stale — the gate's pass condition. *)

val has_corrupt : report -> bool
(** [true] iff some verdict is [Corrupt] — the CLI maps this to the
    decode-error exit code (2) rather than the divergence one (1). *)

val pp_verdict : string -> verdict -> string
(** One human-readable line per job, e.g. ["g,delta=3,k=1,i=2: first \
    divergence at round 1 vertex 4: baseline has send r1 v4 p0 (2), \
    current has nothing"]. *)

val pp_report : report -> string list
(** Every non-[Identical] verdict (plus stale keys) rendered through
    {!pp_verdict}, in report order — empty iff {!clean}. *)

val report_to_json : report -> Shades_json.Json.t
(** The full report as JSON, for CI annotations: per job its verdict,
    divergence location and both events ({!Event.to_string} form),
    plus the stale-key list. *)
